//! The Target Detection block: find candidate regions of interest.
//!
//! A cheap two-stage detector, deliberately the lightest block of the
//! pipeline (Fig. 6 gives it the smallest latency): box-downsample the
//! frame, score local contrast against the frame statistics, and return
//! non-overlapping peaks as fixed-size regions of interest for the
//! matched-filter stages.

use crate::image::Image;

/// Edge length of the square region of interest handed to the FFT block.
/// Power of two (the FFT requirement) and large enough to contain the
/// biggest rendition the scene generator paints (24 px) plus margin.
pub const ROI_SIZE: usize = 32;

/// A detected candidate region, centred on `(cx, cy)` in frame coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roi {
    pub cx: usize,
    pub cy: usize,
    /// Detection score (local contrast in σ units).
    pub score: f64,
}

impl Roi {
    /// Extract this ROI's `ROI_SIZE × ROI_SIZE` patch (zero-padded at the
    /// frame edges).
    pub fn extract(&self, frame: &Image) -> Image {
        let half = (ROI_SIZE / 2) as isize;
        frame.patch(
            self.cx as isize - half,
            self.cy as isize - half,
            ROI_SIZE,
            ROI_SIZE,
        )
    }
}

/// Detection configuration.
#[derive(Debug, Clone, Copy)]
pub struct DetectConfig {
    /// Box-downsampling factor of the coarse pass.
    pub downsample: usize,
    /// Detection threshold in units of frame σ.
    pub threshold_sigma: f64,
    /// Maximum candidates to return (best first).
    pub max_targets: usize,
    /// Minimum separation between accepted peaks, full-res pixels.
    pub min_separation: usize,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            downsample: 2,
            threshold_sigma: 1.6,
            max_targets: 4,
            min_separation: ROI_SIZE / 2,
        }
    }
}

/// Run target detection. Returns the candidate ROIs (highest score first)
/// and the arithmetic-work count of the block.
pub fn detect_targets(frame: &Image, config: &DetectConfig) -> (Vec<Roi>, u64) {
    let mut flops = 0u64;

    // Coarse pass: box downsample.
    let coarse = frame.downsample(config.downsample);
    flops += (frame.width() * frame.height()) as u64; // one add per pixel

    // Frame statistics on the coarse image.
    let mean = coarse.mean();
    let sigma = coarse.variance().sqrt().max(1e-9);
    flops += 3 * (coarse.width() * coarse.height()) as u64;

    // Score: 3×3-smoothed contrast above the mean, in σ units.
    let (cw, ch) = (coarse.width(), coarse.height());
    let mut scores = vec![0.0f64; cw * ch];
    for y in 0..ch {
        for x in 0..cw {
            let mut acc = 0.0;
            let mut n = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let sx = x as i64 + dx;
                    let sy = y as i64 + dy;
                    if sx >= 0 && sy >= 0 && (sx as usize) < cw && (sy as usize) < ch {
                        acc += coarse.get(sx as usize, sy as usize);
                        n += 1.0;
                    }
                }
            }
            scores[y * cw + x] = (acc / n - mean) / sigma;
        }
    }
    flops += 11 * (cw * ch) as u64;

    // Peak picking with greedy non-max suppression.
    let mut candidates: Vec<(f64, usize, usize)> = scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s >= config.threshold_sigma)
        .map(|(i, &s)| (s, i % cw, i / cw))
        .collect();
    // Descending by score; `total_cmp` keeps the order total (a NaN score
    // sorts first, as the largest value) instead of panicking.
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    flops += (candidates.len().max(1) as u64).ilog2() as u64 * candidates.len() as u64;

    let mut accepted: Vec<Roi> = Vec::new();
    let min_sep = config.min_separation as f64;
    for (score, cx, cy) in candidates {
        if accepted.len() >= config.max_targets {
            break;
        }
        let fx = cx * config.downsample + config.downsample / 2;
        let fy = cy * config.downsample + config.downsample / 2;
        let far_enough = accepted.iter().all(|r| {
            let dx = r.cx as f64 - fx as f64;
            let dy = r.cy as f64 - fy as f64;
            (dx * dx + dy * dy).sqrt() >= min_sep
        });
        if far_enough {
            accepted.push(Roi {
                cx: fx,
                cy: fy,
                score,
            });
        }
    }

    (accepted, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneBuilder;

    fn hit(roi: &Roi, tx: usize, ty: usize, tsize: usize) -> bool {
        // ROI centre within the target's bounding box, with a small margin.
        let margin = 6isize;
        let cx = roi.cx as isize;
        let cy = roi.cy as isize;
        cx >= tx as isize - margin
            && cx <= (tx + tsize) as isize + margin
            && cy >= ty as isize - margin
            && cy <= (ty + tsize) as isize + margin
    }

    #[test]
    fn finds_a_clear_target() {
        let scene = SceneBuilder::new(128, 80)
            .seed(5)
            .targets(1)
            .noise_sigma(4.0)
            .build();
        let (rois, flops) = detect_targets(&scene.image, &DetectConfig::default());
        assert!(!rois.is_empty(), "no candidates found");
        let t = &scene.truth[0];
        assert!(
            rois.iter().any(|r| hit(r, t.x, t.y, t.size)),
            "no ROI near the target at ({}, {}); rois: {rois:?}",
            t.x,
            t.y
        );
        assert!(flops > 0);
    }

    #[test]
    fn detection_rate_across_seeds() {
        let mut hits = 0;
        let n = 30;
        for seed in 0..n {
            let scene = SceneBuilder::new(128, 80).seed(seed).targets(1).build();
            let (rois, _) = detect_targets(&scene.image, &DetectConfig::default());
            let t = &scene.truth[0];
            if rois.iter().any(|r| hit(r, t.x, t.y, t.size)) {
                hits += 1;
            }
        }
        assert!(hits >= n * 8 / 10, "detection rate too low: {hits}/{n}");
    }

    #[test]
    fn empty_scene_yields_few_candidates() {
        let scene = SceneBuilder::new(128, 80)
            .seed(13)
            .targets(0)
            .clutter_blobs(0)
            .build();
        let (rois, _) = detect_targets(&scene.image, &DetectConfig::default());
        assert!(rois.len() <= 1, "noise-only scene produced {rois:?}");
    }

    #[test]
    fn respects_max_targets() {
        let scene = SceneBuilder::new(128, 80).seed(21).targets(4).build();
        let cfg = DetectConfig {
            max_targets: 2,
            ..DetectConfig::default()
        };
        let (rois, _) = detect_targets(&scene.image, &cfg);
        assert!(rois.len() <= 2);
    }

    #[test]
    fn candidates_are_separated() {
        let scene = SceneBuilder::new(128, 80).seed(8).targets(3).build();
        let cfg = DetectConfig::default();
        let (rois, _) = detect_targets(&scene.image, &cfg);
        for i in 0..rois.len() {
            for j in (i + 1)..rois.len() {
                let dx = rois[i].cx as f64 - rois[j].cx as f64;
                let dy = rois[i].cy as f64 - rois[j].cy as f64;
                assert!(
                    (dx * dx + dy * dy).sqrt() >= cfg.min_separation as f64,
                    "peaks {i} and {j} too close"
                );
            }
        }
    }

    #[test]
    fn roi_extraction_is_roi_sized() {
        let scene = SceneBuilder::new(128, 80).seed(5).targets(1).build();
        let (rois, _) = detect_targets(&scene.image, &DetectConfig::default());
        let patch = rois[0].extract(&scene.image);
        assert_eq!(patch.width(), ROI_SIZE);
        assert_eq!(patch.height(), ROI_SIZE);
    }

    #[test]
    fn scores_sorted_descending() {
        let scene = SceneBuilder::new(128, 80).seed(17).targets(3).build();
        let (rois, _) = detect_targets(&scene.image, &DetectConfig::default());
        for w in rois.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
