//! The FFT and IFFT blocks: frequency-domain matched filtering.
//!
//! "For each target, a region of interest is extracted and filtered by
//! templates" (§3). The FFT block transforms the ROI and multiplies its
//! spectrum by the conjugate spectrum of each template (a matched filter);
//! the IFFT block inverts the products and scans the correlation surfaces
//! for the best-matching class and alignment.

use crate::complexnum::Complex;
use crate::detect::ROI_SIZE;
use crate::fft::{fft2d_in_place, fft2d_real};
use crate::image::Image;
use crate::template::{TargetClass, Template};

/// Pre-computed conjugate template spectra at ROI scale — built once per
/// pipeline, not counted against per-frame block work (the paper's nodes
/// likewise load their code/tables once).
#[derive(Debug, Clone)]
pub struct TemplateSpectra {
    entries: Vec<(TargetClass, Vec<Complex>)>,
}

impl TemplateSpectra {
    /// Build from a template bank: each template is normalized, zero-padded
    /// into an ROI-sized tile, transformed, and conjugated.
    pub fn build(bank: &[Template]) -> Self {
        let entries = bank
            .iter()
            .map(|t| {
                let mut tile = Image::zeros(ROI_SIZE, ROI_SIZE);
                let norm = t.image.normalized();
                for y in 0..norm.height().min(ROI_SIZE) {
                    for x in 0..norm.width().min(ROI_SIZE) {
                        tile.set(x, y, norm.get(x, y));
                    }
                }
                let (spec, _) = fft2d_real(tile.pixels(), ROI_SIZE, ROI_SIZE);
                let conj: Vec<Complex> = spec.into_iter().map(Complex::conj).collect();
                (t.class, conj)
            })
            .collect();
        TemplateSpectra { entries }
    }

    pub fn classes(&self) -> impl Iterator<Item = TargetClass> + '_ {
        self.entries.iter().map(|(c, _)| *c)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Output of the FFT block: one filtered spectrum per template class.
#[derive(Debug, Clone)]
pub struct FilteredSpectra {
    products: Vec<(TargetClass, Vec<Complex>)>,
}

impl FilteredSpectra {
    /// Serialized size of the intermediate result on the wire, bytes
    /// (half-spectrum at 16-bit fixed point — Hermitian symmetry halves a
    /// real-input spectrum).
    pub fn wire_bytes(&self) -> usize {
        self.products.len() * (ROI_SIZE * (ROI_SIZE / 2 + 1)) * 4
    }
}

/// The FFT block: transform a (normalized) ROI patch and apply each
/// matched filter in the frequency domain. Returns the filtered spectra
/// and the block's work count.
pub fn fft_block(patch: &Image, spectra: &TemplateSpectra) -> (FilteredSpectra, u64) {
    assert_eq!(patch.width(), ROI_SIZE);
    assert_eq!(patch.height(), ROI_SIZE);
    let normalized = patch.normalized();
    let (patch_spec, mut flops) = fft2d_real(normalized.pixels(), ROI_SIZE, ROI_SIZE);
    flops += 4 * (ROI_SIZE * ROI_SIZE) as u64; // normalization pass

    let products = spectra
        .entries
        .iter()
        .map(|(class, conj_spec)| {
            let product: Vec<Complex> = patch_spec
                .iter()
                .zip(conj_spec)
                .map(|(a, b)| *a * *b)
                .collect();
            (*class, product)
        })
        .collect();
    flops += 6 * (spectra.len() * ROI_SIZE * ROI_SIZE) as u64; // complex muls

    (FilteredSpectra { products }, flops)
}

/// Best correlation match found by the IFFT block.
#[derive(Debug, Clone, Copy)]
pub struct MatchResult {
    pub class: TargetClass,
    /// Peak normalized-correlation value.
    pub score: f64,
    /// Circular correlation peak offset within the ROI.
    pub dx: usize,
    pub dy: usize,
}

/// The IFFT block: invert each filtered spectrum and scan the correlation
/// surfaces for the global peak. Returns the best match and the block's
/// work count.
pub fn ifft_block(filtered: &FilteredSpectra) -> (MatchResult, u64) {
    assert!(!filtered.products.is_empty(), "no filtered spectra");
    let mut flops = 0u64;
    let mut best: Option<MatchResult> = None;
    // One inversion buffer reused across classes, instead of cloning each
    // product spectrum.
    let mut surface: Vec<Complex> = Vec::new();
    for (class, product) in &filtered.products {
        surface.clear();
        surface.extend_from_slice(product);
        flops += fft2d_in_place(&mut surface, ROI_SIZE, ROI_SIZE, true);
        for (i, z) in surface.iter().enumerate() {
            let v = z.re; // correlation of real signals is real up to fp noise
            if best.is_none_or(|b| v > b.score) {
                best = Some(MatchResult {
                    class: *class,
                    score: v,
                    dx: i % ROI_SIZE,
                    dy: i / ROI_SIZE,
                });
            }
        }
        flops += (ROI_SIZE * ROI_SIZE) as u64; // peak scan
    }
    (best.expect("at least one product"), flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneBuilder;
    use crate::template::Template;

    fn spectra() -> TemplateSpectra {
        TemplateSpectra::build(&Template::bank())
    }

    /// A patch containing exactly one rendered template at reference scale.
    fn patch_with(class: TargetClass) -> Image {
        let t = Template::render(class);
        let mut img = Image::zeros(ROI_SIZE, ROI_SIZE);
        for y in 0..t.image.height() {
            for x in 0..t.image.width() {
                img.set(x + 8, y + 8, t.image.get(x, y) + 50.0);
            }
        }
        img
    }

    #[test]
    fn matched_filter_identifies_the_right_class() {
        let s = spectra();
        for class in TargetClass::ALL {
            let patch = patch_with(class);
            let (filtered, _) = fft_block(&patch, &s);
            let (m, _) = ifft_block(&filtered);
            assert_eq!(m.class, class, "misclassified {}", class.name());
        }
    }

    #[test]
    fn correlation_score_is_near_one_for_exact_match() {
        // Normalized template correlated with itself peaks at ~1 (both
        // sides unit-energy; circular correlation at zero lag = inner
        // product). Build the patch exactly as the spectra were built:
        // per-template normalization, then zero-padding — so the tile is
        // already zero-mean/unit-energy and `fft_block`'s normalization is
        // the identity.
        let s = spectra();
        let t = Template::render(TargetClass::Tank);
        let norm = t.image.normalized();
        let mut tile = Image::zeros(ROI_SIZE, ROI_SIZE);
        for y in 0..norm.height() {
            for x in 0..norm.width() {
                tile.set(x, y, norm.get(x, y));
            }
        }
        let (filtered, _) = fft_block(&tile, &s);
        let (m, _) = ifft_block(&filtered);
        assert_eq!(m.class, TargetClass::Tank);
        assert!(m.score > 0.9, "score {}", m.score);
        assert_eq!((m.dx, m.dy), (0, 0));
    }

    #[test]
    fn peak_offset_tracks_target_shift() {
        let s = spectra();
        let t = Template::render(TargetClass::Bunker);
        let (sx, sy) = (5usize, 9usize);
        let mut tile = Image::zeros(ROI_SIZE, ROI_SIZE);
        for y in 0..t.image.height() {
            for x in 0..t.image.width() {
                tile.set(x + sx, y + sy, t.image.get(x, y));
            }
        }
        let (filtered, _) = fft_block(&tile, &s);
        let (m, _) = ifft_block(&filtered);
        assert_eq!((m.dx, m.dy), (sx, sy), "peak at wrong lag");
    }

    #[test]
    fn works_on_generated_scenes() {
        let scene = SceneBuilder::new(128, 80)
            .seed(5)
            .targets(1)
            .noise_sigma(4.0)
            .build();
        let truth = &scene.truth[0];
        let patch = scene.image.patch(
            truth.x as isize - 4,
            truth.y as isize - 4,
            ROI_SIZE,
            ROI_SIZE,
        );
        let (filtered, _) = fft_block(&patch, &spectra());
        let (m, _) = ifft_block(&filtered);
        assert!(m.score > 0.2, "weak correlation {}", m.score);
    }

    #[test]
    fn ifft_block_costs_more_than_fft_block() {
        // Fig. 6 rank: IFFT (0.32 s) > FFT (0.19 s). Our implementation
        // mirrors that: one forward transform vs. one inverse per template.
        let s = spectra();
        let patch = patch_with(TargetClass::Truck);
        let (filtered, fft_flops) = fft_block(&patch, &s);
        let (_, ifft_flops) = ifft_block(&filtered);
        assert!(
            ifft_flops > fft_flops,
            "ifft {ifft_flops} <= fft {fft_flops}"
        );
    }

    #[test]
    fn wire_bytes_are_plausible_intermediate_payload() {
        let s = spectra();
        let patch = patch_with(TargetClass::Tank);
        let (filtered, _) = fft_block(&patch, &s);
        // Half-spectra at 16-bit: in the ballpark of the paper's 7.5 KB
        // intermediate payloads (same order of magnitude).
        let kb = filtered.wire_bytes() as f64 / 1024.0;
        assert!((2.0..16.0).contains(&kb), "wire size {kb} KB");
    }
}
