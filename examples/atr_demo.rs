//! Run the *real* ATR implementation on a synthetic scene and visualize
//! the result in the terminal.
//!
//! ```text
//! cargo run -p dles-examples --bin atr_demo --release [seed] [targets]
//! ```
//!
//! Generates a 128×80 frame with targets over clutter and noise, runs the
//! four-block pipeline (Target Detection → FFT → IFFT → Compute Distance),
//! and prints an ASCII rendering with ground truth and detections.
#![forbid(unsafe_code)]

use dles_atr::pipeline::AtrPipeline;
use dles_atr::scene::SceneBuilder;
use dles_atr::Block;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let targets: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let scene = SceneBuilder::new(128, 80)
        .seed(seed)
        .targets(targets)
        .noise_sigma(5.0)
        .build();
    let pipeline = AtrPipeline::standard();
    let report = pipeline.run(&scene.image);

    // ASCII rendering: grayscale ramp, truth corners (+), detections (X).
    let ramp: &[u8] = b" .:-=+*#%@";
    let (w, h) = (scene.image.width(), scene.image.height());
    let mut canvas: Vec<Vec<char>> = (0..h / 2)
        .map(|y| {
            (0..w)
                .map(|x| {
                    // Vertical 2:1 squash for terminal aspect ratio.
                    let v = (scene.image.get(x, y * 2) + scene.image.get(x, y * 2 + 1)) / 2.0;
                    let idx = ((v / 256.0) * ramp.len() as f64) as usize;
                    ramp[idx.min(ramp.len() - 1)] as char
                })
                .collect()
        })
        .collect();
    for t in &scene.truth {
        let (cx, cy) = (t.x + t.size / 2, (t.y + t.size / 2) / 2);
        if cy < canvas.len() && cx < w {
            canvas[cy][cx] = '+';
        }
    }
    for d in &report.targets {
        let (cx, cy) = (d.cx, d.cy / 2);
        if cy < canvas.len() && cx < w {
            canvas[cy][cx] = 'X';
        }
    }
    for row in &canvas {
        println!("{}", row.iter().collect::<String>());
    }

    println!("\nground truth (+):");
    for t in &scene.truth {
        println!(
            "  {:<7} at ({:>3},{:>3}) size {:>2} px, distance {:>6.0} m",
            t.class.name(),
            t.x + t.size / 2,
            t.y + t.size / 2,
            t.size,
            t.distance_m
        );
    }
    println!("detections (X):");
    for d in &report.targets {
        println!(
            "  {:<7} at ({:>3},{:>3}) score {:>5.2}, distance {:>6.0} m",
            d.class.name(),
            d.cx,
            d.cy,
            d.match_score,
            d.distance_m
        );
    }

    println!("\nper-block arithmetic work (flops), cf. the Fig. 6 latency rank:");
    for b in Block::ALL {
        println!("  {:<16} {:>12}", b.name(), report.flops(b));
    }
}
