//! Quickstart: simulate the paper's baseline and its best technique.
//!
//! ```text
//! cargo run -p dles-examples --bin quickstart --release
//! ```
//!
//! Runs the single-node baseline (experiment 1) and the node-rotation
//! configuration (experiment 2C) to battery exhaustion and prints the
//! headline comparison: node rotation extends normalized battery life by
//! roughly 45%.
#![forbid(unsafe_code)]

use dles_core::experiment::{run_experiment, Experiment};

fn main() {
    println!("dles quickstart — Liu & Chou (IPPS 2004) reproduction\n");

    println!("running baseline (one Itsy node at 206.4 MHz, D = 2.3 s)...");
    let baseline = run_experiment(&Experiment::Exp1.config());
    println!(
        "  T(1) = {:.2} h, F(1) = {:.1}K frames",
        baseline.life_hours(),
        baseline.frames_completed as f64 / 1000.0
    );

    println!("running node rotation (two nodes at 59/103.2 MHz, rotate every 100 frames)...");
    let rotation = run_experiment(&Experiment::Exp2C.config());
    println!(
        "  T(2C) = {:.2} h, F(2C) = {:.1}K frames",
        rotation.life_hours(),
        rotation.frames_completed as f64 / 1000.0
    );

    let rnorm = 100.0 * rotation.normalized_ratio(&baseline);
    println!(
        "\nnormalized battery-life ratio R_norm(2C) = {:.0}% (paper: 145%)",
        rnorm
    );
    println!(
        "node rotation extended normalized battery life by {:.0}% — the\n\
         paper's headline result (abstract: \"node rotation showed the most\n\
         measurable improvement to battery lifetime at 45%\").",
        rnorm - 100.0
    );
}
