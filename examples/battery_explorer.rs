//! Explore the battery models: rate-capacity curves, the recovery effect,
//! and why the ideal-battery assumption misleads distributed DVS.
//!
//! ```text
//! cargo run -p dles-examples --bin battery_explorer --release
//! ```
#![forbid(unsafe_code)]

use dles_battery::packs::{itsy_pack_a, itsy_pack_b};
use dles_battery::{
    simulate_lifetime, Battery, IdealBattery, KibamBattery, LoadProfile, LoadStep, PeukertBattery,
};

fn main() {
    rate_capacity_curve();
    recovery_effect();
    model_comparison();
}

/// Delivered capacity vs. constant discharge rate, for both calibrated
/// Itsy packs.
fn rate_capacity_curve() {
    println!("rate-capacity curve — delivered charge vs. constant current");
    println!(
        "{:>10} {:>16} {:>16}",
        "I (mA)", "pack A (mAh)", "pack B (mAh)"
    );
    for current in [20.0, 40.0, 59.0, 80.0, 110.0, 130.0, 200.0, 400.0] {
        let deliver = |mut b: KibamBattery| {
            let life = simulate_lifetime(&mut b, &LoadProfile::constant(current));
            life.delivered_mah.get()
        };
        println!(
            "{:>10.0} {:>16.0} {:>16.0}",
            current,
            deliver(itsy_pack_a().fresh()),
            deliver(itsy_pack_b().fresh()),
        );
    }
    println!(
        "(nominal capacities: pack A {:.0} mAh, pack B {:.0} mAh)\n",
        itsy_pack_a().kibam.capacity_mah.get(),
        itsy_pack_b().kibam.capacity_mah.get()
    );
}

/// The §6.3 recovery effect: a pulsed load delivers more charge than a
/// continuous load at the same on-current.
fn recovery_effect() {
    println!("recovery effect — experiment 1A's frame shape vs. continuous discharge");
    let pulsed = LoadProfile::repeating(vec![
        LoadStep::from_secs(1.1, 130.0),
        LoadStep::from_secs(1.2, 40.0),
    ]);
    let continuous = LoadProfile::constant(130.0);
    let mut b1 = itsy_pack_b().fresh();
    let lp = simulate_lifetime(&mut b1, &pulsed);
    let mut b2 = itsy_pack_b().fresh();
    let lc = simulate_lifetime(&mut b2, &continuous);
    println!(
        "  pulsed  (1.1 s @130 mA, 1.2 s @40 mA): {:>6.2} h, {:>4.0} mAh delivered",
        lp.lifetime.as_hours_f64(),
        lp.delivered_mah.get()
    );
    println!(
        "  continuous (@130 mA):                  {:>6.2} h, {:>4.0} mAh delivered",
        lc.lifetime.as_hours_f64(),
        lc.delivered_mah.get()
    );
    println!(
        "  the rests let the bound charge flow back: +{:.0} mAh usable\n",
        (lp.delivered_mah - lc.delivered_mah).get()
    );
}

/// Same load, three models: the ideal battery misses both effects.
fn model_comparison() {
    println!("model comparison — experiment 2's Node2 frame under three battery models");
    let profile = LoadProfile::repeating(vec![
        LoadStep::from_secs(0.136, 53.5),
        LoadStep::from_secs(1.876, 59.0),
        LoadStep::from_secs(0.085, 53.5),
        LoadStep::from_secs(0.203, 36.8),
    ]);
    let cap = itsy_pack_b().kibam.capacity_mah.get();
    let mut kibam: Box<dyn Battery> = Box::new(itsy_pack_b().fresh());
    let mut ideal: Box<dyn Battery> = Box::new(IdealBattery::new(cap));
    let mut peukert: Box<dyn Battery> = Box::new(PeukertBattery::new(cap, 60.0, 1.2));
    for (name, b) in [
        ("KiBaM (calibrated)", &mut kibam),
        ("ideal coulomb counter", &mut ideal),
        ("Peukert (p = 1.2)", &mut peukert),
    ] {
        let life = simulate_lifetime(b.as_mut(), &profile);
        println!(
            "  {:<22} {:>6.2} h ({:>4.0} mAh delivered)",
            name,
            life.lifetime.as_hours_f64(),
            life.delivered_mah.get()
        );
    }
    println!("(the paper measured 14.1 h for this node — §6.4)");
}
