//! A surveillance scenario end to end: the *real* ATR pipeline processes
//! a stream of synthetic camera frames while the *simulated* distributed
//! system accounts for the energy of running exactly that workload on two
//! battery-powered nodes with node rotation.
//!
//! ```text
//! cargo run -p dles-examples --bin surveillance_pipeline --release [n_frames]
//! ```
//!
//! This is the workload the paper's introduction motivates: a camera
//! producing one frame every D = 2.3 s, targets to detect and range, and
//! a battery budget that decides how long the post stays up.
#![forbid(unsafe_code)]

use dles_atr::pipeline::AtrPipeline;
use dles_atr::scene::SceneBuilder;
use dles_core::experiment::{run_experiment, Experiment};

fn main() {
    let n_frames: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    // --- The functional side: actually process frames. ---
    println!("processing {n_frames} camera frames through the real ATR pipeline...");
    let pipeline = AtrPipeline::standard();
    let mut detections = 0usize;
    let mut classified = 0usize;
    let mut ranged_m = Vec::new();
    for seed in 0..n_frames {
        let scene = SceneBuilder::new(128, 80)
            .seed(1000 + seed)
            .targets(1)
            .noise_sigma(5.0)
            .build();
        let report = pipeline.run(&scene.image);
        let truth = &scene.truth[0];
        if let Some(d) = report.targets.iter().min_by_key(|t| {
            let dx = t.cx as i64 - (truth.x + truth.size / 2) as i64;
            let dy = t.cy as i64 - (truth.y + truth.size / 2) as i64;
            dx * dx + dy * dy
        }) {
            detections += 1;
            if d.class == truth.class {
                classified += 1;
            }
            ranged_m.push((d.distance_m, truth.distance_m));
        }
    }
    println!("  detected {detections}/{n_frames}, correctly classified {classified}/{detections}");
    if !ranged_m.is_empty() {
        let mean_err = ranged_m
            .iter()
            .map(|(est, truth)| (est - truth).abs() / truth)
            .sum::<f64>()
            / ranged_m.len() as f64;
        println!("  mean relative range error {:.0}%", 100.0 * mean_err);
    }

    // --- The energy side: how long would the post stay up? ---
    println!("\nsimulating the battery budget of the two-node rotating deployment...");
    let result = run_experiment(&Experiment::Exp2C.config());
    let frames = result.frames_completed;
    println!(
        "  the two-node post processes {:.1}K frames over {:.1} h before its\n\
         batteries die ({} deadline misses); at one frame per 2.3 s that is\n\
         {:.1} h of continuous surveillance per charge.",
        frames as f64 / 1000.0,
        result.life_hours(),
        result.deadline_misses,
        result.life_hours(),
    );
    let baseline = run_experiment(&Experiment::Exp1.config());
    println!(
        "  a single-node post lasts {:.1} h — the distributed deployment with\n\
         rotation buys {:.0}% more normalized uptime.",
        baseline.life_hours(),
        100.0 * (result.normalized_ratio(&baseline) - 1.0)
    );
}
