//! Explore the partitioning design space: every contiguous split of the
//! ATR chain over 1–4 nodes, its required clock rates, feasibility, and
//! power ranking — with an adjustable frame deadline.
//!
//! ```text
//! cargo run -p dles-examples --bin partition_explorer --release [D_secs]
//! ```
#![forbid(unsafe_code)]

use dles_atr::blocks::partitions;
use dles_core::partition::{analyze_partition, best_partition};
use dles_core::workload::SystemConfig;
use dles_sim::SimTime;

fn main() {
    let d_secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.3);
    let mut sys = SystemConfig::paper();
    sys.frame_delay = SimTime::from_secs_f64(d_secs);

    println!("partition explorer — frame deadline D = {d_secs} s\n");
    for n in 1..=4usize {
        println!("--- {n} node(s) ---");
        for ranges in partitions(n) {
            let a = analyze_partition(&sys, &ranges, SimTime::ZERO);
            let scheme: Vec<String> = ranges.iter().map(|r| format!("{r}")).collect();
            print!("{:<78}", scheme.join(" "));
            if a.is_feasible() {
                let levels: Vec<String> = a
                    .levels
                    .iter()
                    .map(|l| format!("{:.1}", l.unwrap().freq_mhz.mhz()))
                    .collect();
                println!(
                    " levels [{}] MHz, Σf·V² = {:.0}",
                    levels.join(", "),
                    a.power_proxy()
                );
            } else {
                let worst = a
                    .required_mhz
                    .iter()
                    .map(|f| f.mhz())
                    .fold(0.0f64, f64::max);
                println!(" INFEASIBLE (needs {worst:.0} MHz)");
            }
        }
        match best_partition(&sys, n) {
            Some(best) => {
                let levels: Vec<String> = best
                    .levels
                    .iter()
                    .map(|l| format!("{:.1}", l.unwrap().freq_mhz.mhz()))
                    .collect();
                println!("  => best: levels [{}] MHz\n", levels.join(", "));
            }
            None => println!("  => no feasible partition at D = {d_secs} s\n"),
        }
    }
    println!(
        "try a tighter deadline (e.g. `partition_explorer 1.8`) to watch\n\
         the I/O-heavy schemes fall off the feasible set, or a looser one\n\
         (e.g. 4.0) to see every node reach the 59 MHz floor."
    );
}
